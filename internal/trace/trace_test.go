package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func cpuParams() CPUParams {
	return CPUParams{
		Footprint: 1 << 20, Hot: 64 << 10,
		HotFrac: 0.6, StreamFrac: 0.2, ChaseFrac: 0.1,
		WriteFrac: 0.3, MeanGap: 30,
	}
}

func TestCPUGenDeterministic(t *testing.T) {
	a := Slice(NewCPU(cpuParams(), 0, 42), 1000)
	b := Slice(NewCPU(cpuParams(), 0, 42), 1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := Slice(NewCPU(cpuParams(), 0, 43), 1000)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestCPUGenBounds(t *testing.T) {
	p := cpuParams()
	base := uint64(1 << 30)
	for _, op := range Slice(NewCPU(p, base, 1), 20000) {
		if op.Addr < base || op.Addr >= base+p.Footprint {
			t.Fatalf("address %#x outside [%#x, %#x)", op.Addr, base, base+p.Footprint)
		}
		if op.Addr%64 != 0 {
			t.Fatalf("address %#x not 64B aligned", op.Addr)
		}
		if op.Gap == 0 {
			t.Fatal("zero gap")
		}
	}
}

func TestCPUGenHotLocality(t *testing.T) {
	p := cpuParams()
	p.HotFrac = 0.9
	counts := map[uint64]int{}
	ops := Slice(NewCPU(p, 0, 7), 50000)
	inHot := 0
	for _, op := range ops {
		if op.Addr < p.Hot {
			inHot++
		}
		counts[op.Addr]++
	}
	if frac := float64(inHot) / float64(len(ops)); frac < 0.85 {
		t.Fatalf("hot fraction %.2f, want >= 0.85", frac)
	}
	// Zipf skew: the single most popular line should absorb far more
	// than a uniform share of the hot accesses.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	uniform := float64(inHot) / float64(p.Hot/64)
	if float64(max) < 5*uniform {
		t.Fatalf("top line count %d vs uniform %.1f; no Zipf skew", max, uniform)
	}
}

func TestCPUGenWriteFraction(t *testing.T) {
	p := cpuParams()
	p.WriteFrac = 0.25
	writes := 0
	ops := Slice(NewCPU(p, 0, 3), 40000)
	for _, op := range ops {
		if op.Write {
			writes++
		}
	}
	frac := float64(writes) / float64(len(ops))
	if frac < 0.22 || frac > 0.28 {
		t.Fatalf("write fraction %.3f, want ~0.25", frac)
	}
}

func TestGPUGenStreaming(t *testing.T) {
	p := GPUParams{Region: 1 << 20, StrideLines: 1, MeanGap: 10}
	ops := Slice(NewGPU(p, 0, 5), 1000)
	seq := 0
	for i := 1; i < len(ops); i++ {
		if ops[i].Addr == ops[i-1].Addr+64 {
			seq++
		}
	}
	if frac := float64(seq) / float64(len(ops)); frac < 0.9 {
		t.Fatalf("sequential fraction %.2f, want >= 0.9 for a pure stream", frac)
	}
}

func TestGPUGenStrideSkipsLines(t *testing.T) {
	p := GPUParams{Region: 1 << 20, StrideLines: 4, MeanGap: 10}
	ops := Slice(NewGPU(p, 0, 5), 4096)
	touched := map[uint64]bool{}
	for _, op := range ops {
		touched[(op.Addr%256)/64] = true
	}
	// Stride 4 lines = one line per 256B block, always the same offset.
	if len(touched) != 1 {
		t.Fatalf("stride-4 stream touched %d distinct line offsets, want 1", len(touched))
	}
}

func TestGPUGenHotReuse(t *testing.T) {
	p := GPUParams{Region: 1 << 22, Hot: 1 << 16, HotFrac: 0.5, MeanGap: 10}
	inHot := 0
	ops := Slice(NewGPU(p, 0, 9), 20000)
	for _, op := range ops {
		if op.Addr < p.Hot {
			inHot++
		}
	}
	frac := float64(inHot) / float64(len(ops))
	if frac < 0.45 || frac > 0.60 {
		t.Fatalf("hot fraction %.2f, want ~0.5", frac)
	}
}

func TestLimit(t *testing.T) {
	l := &Limit{G: NewCPU(cpuParams(), 0, 1), N: 5}
	n := 0
	for {
		_, ok := l.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 5 {
		t.Fatalf("limit yielded %d ops, want 5", n)
	}
}

func TestFileRoundTrip(t *testing.T) {
	ops := Slice(NewCPU(cpuParams(), 1<<28, 11), 5000)
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if err := w.Write(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 5000 {
		t.Fatalf("writer count %d", w.Count())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range ops {
		got, ok := r.Next()
		if !ok {
			t.Fatalf("stream ended at op %d: %v", i, r.Err())
		}
		if got != want {
			t.Fatalf("op %d: got %+v want %+v", i, got, want)
		}
	}
	if _, ok := r.Next(); ok {
		t.Fatal("reader yielded more ops than written")
	}
	if err := r.Err(); err != nil {
		t.Fatalf("clean EOF reported error %v", err)
	}
}

func TestFileCompression(t *testing.T) {
	// A streaming trace should encode in well under 8 bytes/op.
	g := NewGPU(GPUParams{Region: 1 << 20, MeanGap: 10}, 0, 1)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	const n = 10000
	for i := 0; i < n; i++ {
		op, _ := g.Next()
		if err := w.Write(op); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	if perOp := float64(buf.Len()) / n; perOp > 6 {
		t.Fatalf("%.1f bytes/op, want <= 6 for a streaming trace", perOp)
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	if _, err := NewReader(strings.NewReader("NOTATRACE")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReaderTruncated(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Op{Gap: 3, Addr: 128})
	w.Flush()
	data := buf.Bytes()[:buf.Len()-1] // chop the flags byte
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("truncated record decoded")
	}
	if r.Err() == nil {
		t.Fatal("truncation not reported")
	}
}

// Property: any op sequence survives a file round trip.
func TestPropertyFileRoundTrip(t *testing.T) {
	f := func(gaps []uint16, addrs []uint32, writes []bool) bool {
		n := len(gaps)
		if len(addrs) < n {
			n = len(addrs)
		}
		ops := make([]Op, n)
		for i := 0; i < n; i++ {
			ops[i] = Op{Gap: uint32(gaps[i]), Addr: uint64(addrs[i]) &^ 63,
				Write: i < len(writes) && writes[i]}
		}
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		for _, op := range ops {
			if w.Write(op) != nil {
				return false
			}
		}
		w.Flush()
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for _, want := range ops {
			got, ok := r.Next()
			if !ok || got != want {
				return false
			}
		}
		_, ok := r.Next()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
