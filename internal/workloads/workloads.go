// Package workloads is the profile registry: synthetic stand-ins for the
// paper's SPEC CPU2017, Rodinia, and MLPerf BERT workloads, plus the
// twelve CPU+GPU combinations of Table II.
//
// Each profile's knobs are expressed as fractions of the fast-tier
// capacity so that the quick (scaled-down) and paper-sized
// configurations exercise the same contention regimes. The parameters
// encode the aggregate properties the paper's insights rest on: SPEC
// profiles differ in footprint, hot-set size, randomness, and write
// ratio; GPU profiles differ in footprint, reuse, block utilization,
// and irregularity (streamcluster's 1-line-in-4 utilization is what
// makes unthrottled migration wasteful, Section VI-B).
package workloads

import (
	"fmt"

	"github.com/hydrogen-sim/hydrogen/internal/trace"
)

type cpuSpec struct {
	fp, hot                        float64 // x fast capacity
	hotFrac, streamFrac, chaseFrac float64
	writeFrac                      float64
	gap                            uint32
}

var cpuSpecs = map[string]cpuSpec{
	"gcc":        {fp: 0.25, hot: 0.040, hotFrac: 0.80, streamFrac: 0.10, chaseFrac: 0.05, writeFrac: 0.25, gap: 40},
	"mcf":        {fp: 1.00, hot: 0.250, hotFrac: 0.70, streamFrac: 0.05, chaseFrac: 0.20, writeFrac: 0.20, gap: 18},
	"lbm":        {fp: 0.80, hot: 0.020, hotFrac: 0.10, streamFrac: 0.85, chaseFrac: 0.03, writeFrac: 0.45, gap: 22},
	"roms":       {fp: 0.60, hot: 0.080, hotFrac: 0.50, streamFrac: 0.42, chaseFrac: 0.04, writeFrac: 0.30, gap: 26},
	"omnetpp":    {fp: 0.50, hot: 0.120, hotFrac: 0.75, streamFrac: 0.05, chaseFrac: 0.15, writeFrac: 0.30, gap: 30},
	"xz":         {fp: 0.40, hot: 0.100, hotFrac: 0.70, streamFrac: 0.20, chaseFrac: 0.05, writeFrac: 0.35, gap: 35},
	"deepsjeng":  {fp: 0.30, hot: 0.060, hotFrac: 0.82, streamFrac: 0.05, chaseFrac: 0.08, writeFrac: 0.25, gap: 45},
	"cactusBSSN": {fp: 0.70, hot: 0.100, hotFrac: 0.45, streamFrac: 0.47, chaseFrac: 0.04, writeFrac: 0.35, gap: 24},
	"fotonik3d":  {fp: 0.90, hot: 0.050, hotFrac: 0.30, streamFrac: 0.62, chaseFrac: 0.04, writeFrac: 0.30, gap: 20},
	"bwaves":     {fp: 1.20, hot: 0.080, hotFrac: 0.40, streamFrac: 0.52, chaseFrac: 0.04, writeFrac: 0.25, gap: 21},
}

type gpuSpec struct {
	region, hot        float64 // x fast capacity (whole-GPU totals)
	hotFrac, irregFrac float64
	strideLines        uint64
	writeFrac          float64
	gap                uint32
}

var gpuSpecs = map[string]gpuSpec{
	// Gaps are GPU instructions per post-coalescing memory access; with
	// 6 subslices retiring 8 instr/cycle each, gap 20 is ~2.4 lines/cycle
	// of raw demand — enough that, as with the paper's trace-driven GPU,
	// the memory system rather than the front end is the limiter.
	//
	// Most Rodinia kernels' working sets FIT the fast tier (as the
	// paper's do): their hit rates stay high even at small capacity
	// shares (Fig. 2(c)), they stress fast-tier *bandwidth*, and their
	// slow-tier pressure is migration sweeps. streamcluster and bfs are
	// the exceptions: footprints far beyond the fast tier with poor
	// block utilization, the migration-amplification cases that
	// token-based throttling exists for (Section VI-B).
	"backprop":      {region: 0.10, hot: 0.02, hotFrac: 0.10, strideLines: 1, writeFrac: 0.30, gap: 18},
	"hotspot":       {region: 0.09, hot: 0.02, hotFrac: 0.10, strideLines: 1, writeFrac: 0.30, gap: 20},
	"lud":           {region: 0.07, hot: 0.01, hotFrac: 0.25, strideLines: 1, writeFrac: 0.30, gap: 24},
	"streamcluster": {region: 4.00, hot: 0.01, hotFrac: 0.05, irregFrac: 0.10, strideLines: 4, writeFrac: 0.05, gap: 28},
	"pathfinder":    {region: 0.12, hot: 0.01, hotFrac: 0.10, strideLines: 1, writeFrac: 0.25, gap: 22},
	"needle":        {region: 0.10, hot: 0.015, hotFrac: 0.10, irregFrac: 0.30, strideLines: 2, writeFrac: 0.30, gap: 26},
	"bfs":           {region: 2.50, hot: 0.01, hotFrac: 0.10, irregFrac: 0.70, strideLines: 2, writeFrac: 0.15, gap: 32},
	"srad":          {region: 0.10, hot: 0.02, hotFrac: 0.10, strideLines: 1, writeFrac: 0.35, gap: 22},
	// bert: GEMM inference; weights re-read heavily — the GPU profile
	// that does want fast-tier capacity.
	"bert": {region: 0.30, hot: 0.08, hotFrac: 0.35, strideLines: 1, writeFrac: 0.10, gap: 20},
}

// CPUNames lists the available SPEC stand-ins.
func CPUNames() []string {
	return []string{"gcc", "mcf", "lbm", "roms", "omnetpp", "xz", "deepsjeng", "cactusBSSN", "fotonik3d", "bwaves"}
}

// GPUNames lists the available Rodinia/MLPerf stand-ins.
func GPUNames() []string {
	return []string{"backprop", "hotspot", "lud", "streamcluster", "pathfinder", "needle", "bfs", "srad", "bert"}
}

// CPUProfile scales the named profile to a system whose fast tier holds
// fastCap bytes.
func CPUProfile(name string, fastCap uint64) (trace.CPUParams, error) {
	s, ok := cpuSpecs[name]
	if !ok {
		return trace.CPUParams{}, fmt.Errorf("workloads: unknown CPU profile %q", name)
	}
	f := float64(fastCap)
	return trace.CPUParams{
		Footprint:  alignUp(uint64(s.fp*f), 4096),
		Hot:        alignUp(uint64(s.hot*f), 1024),
		HotFrac:    s.hotFrac,
		StreamFrac: s.streamFrac,
		ChaseFrac:  s.chaseFrac,
		WriteFrac:  s.writeFrac,
		MeanGap:    s.gap,
	}, nil
}

// GPUProfile scales the named profile; the returned params are
// whole-GPU totals that the system divides across subslices.
func GPUProfile(name string, fastCap uint64) (trace.GPUParams, error) {
	s, ok := gpuSpecs[name]
	if !ok {
		return trace.GPUParams{}, fmt.Errorf("workloads: unknown GPU profile %q", name)
	}
	f := float64(fastCap)
	return trace.GPUParams{
		Region:      alignUp(uint64(s.region*f), 4096),
		Hot:         alignUp(uint64(s.hot*f), 1024),
		HotFrac:     s.hotFrac,
		IrregFrac:   s.irregFrac,
		StrideLines: s.strideLines,
		WriteFrac:   s.writeFrac,
		MeanGap:     s.gap,
	}, nil
}

func alignUp(v, a uint64) uint64 { return (v + a - 1) &^ (a - 1) }

// Combo is one row of Table II: four CPU workloads (run in rate mode
// with two copies each, one per core) plus one GPU workload.
type Combo struct {
	ID  string
	CPU []string // 4 names; expanded to 8 cores by CPUAssignment
	GPU string
}

// Combos reproduces Table II.
var Combos = []Combo{
	{"C1", []string{"gcc", "mcf", "lbm", "roms"}, "backprop"},
	{"C2", []string{"omnetpp", "lbm", "gcc", "xz"}, "backprop"},
	{"C3", []string{"roms", "mcf", "deepsjeng", "cactusBSSN"}, "hotspot"},
	{"C4", []string{"lbm", "fotonik3d", "deepsjeng", "omnetpp"}, "lud"},
	{"C5", []string{"roms", "lbm", "deepsjeng", "fotonik3d"}, "streamcluster"},
	{"C6", []string{"omnetpp", "xz", "roms", "deepsjeng"}, "pathfinder"},
	{"C7", []string{"bwaves", "gcc", "xz", "fotonik3d"}, "needle"},
	{"C8", []string{"fotonik3d", "gcc", "omnetpp", "deepsjeng"}, "bfs"},
	{"C9", []string{"mcf", "cactusBSSN", "roms", "deepsjeng"}, "srad"},
	{"C10", []string{"deepsjeng", "xz", "roms", "bwaves"}, "pathfinder"},
	{"C11", []string{"omnetpp", "gcc", "fotonik3d", "lbm"}, "bert"},
	{"C12", []string{"mcf", "gcc", "cactusBSSN", "omnetpp"}, "bert"},
}

// ComboByID looks up a Table II combination.
func ComboByID(id string) (Combo, error) {
	for _, c := range Combos {
		if c.ID == id {
			return c, nil
		}
	}
	return Combo{}, fmt.Errorf("workloads: unknown combo %q", id)
}

// CPUAssignment expands a combo's 4 workloads to cores rate-mode style:
// core i runs CPU[i%4] (two copies each on the Table I 8-core machine;
// other core counts cycle through the same list).
func (c Combo) CPUAssignment(cores int) []string {
	out := make([]string, cores)
	for i := range out {
		out[i] = c.CPU[i%len(c.CPU)]
	}
	return out
}
