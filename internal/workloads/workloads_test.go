package workloads

import (
	"testing"

	"github.com/hydrogen-sim/hydrogen/internal/trace"
)

const fastCap = 16 << 20

func TestAllCPUProfilesResolve(t *testing.T) {
	for _, name := range CPUNames() {
		p, err := CPUProfile(name, fastCap)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Footprint == 0 || p.Hot == 0 || p.Hot > p.Footprint {
			t.Errorf("%s: bad sizes footprint=%d hot=%d", name, p.Footprint, p.Hot)
		}
		if sum := p.HotFrac + p.StreamFrac + p.ChaseFrac; sum > 1.0001 {
			t.Errorf("%s: access-class fractions sum to %.2f", name, sum)
		}
		if p.MeanGap == 0 {
			t.Errorf("%s: zero gap", name)
		}
		// The generator must actually build.
		g := trace.NewCPU(p, 0, 1)
		if ops := trace.Slice(g, 10); len(ops) != 10 {
			t.Errorf("%s: generator yielded %d ops", name, len(ops))
		}
	}
}

func TestAllGPUProfilesResolve(t *testing.T) {
	for _, name := range GPUNames() {
		p, err := GPUProfile(name, fastCap)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Region == 0 {
			t.Errorf("%s: zero region", name)
		}
		g := trace.NewGPU(p, 0, 1)
		if ops := trace.Slice(g, 10); len(ops) != 10 {
			t.Errorf("%s: generator yielded %d ops", name, len(ops))
		}
	}
}

func TestUnknownProfiles(t *testing.T) {
	if _, err := CPUProfile("nope", fastCap); err == nil {
		t.Error("unknown CPU profile resolved")
	}
	if _, err := GPUProfile("nope", fastCap); err == nil {
		t.Error("unknown GPU profile resolved")
	}
}

func TestCombosMatchTable2(t *testing.T) {
	if len(Combos) != 12 {
		t.Fatalf("%d combos, Table II has 12", len(Combos))
	}
	// Spot-check the table contents against the paper.
	c1, _ := ComboByID("C1")
	want := []string{"gcc", "mcf", "lbm", "roms"}
	for i, w := range want {
		if c1.CPU[i] != w {
			t.Fatalf("C1 CPU workloads %v, want %v", c1.CPU, want)
		}
	}
	if c1.GPU != "backprop" {
		t.Fatalf("C1 GPU %s, want backprop", c1.GPU)
	}
	c5, _ := ComboByID("C5")
	if c5.GPU != "streamcluster" {
		t.Fatalf("C5 GPU %s, want streamcluster", c5.GPU)
	}
	c12, _ := ComboByID("C12")
	if c12.GPU != "bert" {
		t.Fatalf("C12 GPU %s, want bert", c12.GPU)
	}
}

func TestEveryComboProfileExists(t *testing.T) {
	for _, c := range Combos {
		for _, name := range c.CPU {
			if _, err := CPUProfile(name, fastCap); err != nil {
				t.Errorf("%s references unknown CPU workload %s", c.ID, name)
			}
		}
		if _, err := GPUProfile(c.GPU, fastCap); err != nil {
			t.Errorf("%s references unknown GPU workload %s", c.ID, c.GPU)
		}
	}
}

func TestCPUAssignmentRateMode(t *testing.T) {
	c, _ := ComboByID("C1")
	got := c.CPUAssignment(8)
	// Rate mode: two copies of each of the four workloads.
	counts := map[string]int{}
	for _, w := range got {
		counts[w]++
	}
	for _, w := range c.CPU {
		if counts[w] != 2 {
			t.Fatalf("workload %s assigned %d times on 8 cores, want 2", w, counts[w])
		}
	}
	if n := len(c.CPUAssignment(4)); n != 4 {
		t.Fatalf("4-core assignment has %d entries", n)
	}
}

func TestProfilesScaleWithCapacity(t *testing.T) {
	small, _ := CPUProfile("mcf", 16<<20)
	big, _ := CPUProfile("mcf", 512<<20)
	ratio := float64(big.Footprint) / float64(small.Footprint)
	if ratio < 30 || ratio > 34 {
		t.Fatalf("mcf footprint scaled by %.1f for 32x capacity", ratio)
	}
}

func TestStreamclusterIsTheMigrationWorstCase(t *testing.T) {
	sc, _ := GPUProfile("streamcluster", fastCap)
	if sc.StrideLines < 4 {
		t.Fatalf("streamcluster stride %d lines; must skip lines to waste migrations", sc.StrideLines)
	}
	if sc.Region < 2*fastCap {
		t.Fatalf("streamcluster region %d; must far exceed the fast tier", sc.Region)
	}
}
