#!/bin/sh
# Run the simulation benchmark suite and append the measurements to
# BENCH_sim.json (see cmd/hydrobench). Extra arguments are passed
# through, e.g.:
#
#   scripts/bench.sh                        # full set
#   scripts/bench.sh -bench 'Figure5$'      # one benchmark
#   scripts/bench.sh -quick -label quick    # faster, noisier
#   scripts/bench.sh -pprof /tmp/prof       # capture cpu/heap profiles
set -eu
cd "$(dirname "$0")/.."
exec go run ./cmd/hydrobench "$@"
