#!/bin/sh
# Run the simulation benchmark suite and append the measurements to
# BENCH_sim.json (see cmd/hydrobench). Extra arguments are passed
# through, e.g.:
#
#   scripts/bench.sh                        # full set
#   scripts/bench.sh -bench 'Figure5$'      # one benchmark
#   scripts/bench.sh -bench 'Figure5(Par4)?$'  # serial + 4-shard PDES pair
#   scripts/bench.sh -quick -label quick    # faster, noisier
#   scripts/bench.sh -pprof /tmp/prof       # capture cpu/heap profiles
#   scripts/bench.sh -serve                 # hydroserved submit latency
#                                           # (cold + cache-hit p50/p99,
#                                           # appends to BENCH_serve.json)
#
# Compare mode runs nothing: it diffs the two most recent trajectory
# entries per benchmark and exits nonzero if any ns/op regressed >10%.
# Typical flow (also run advisory-only in CI, see .github/workflows):
#
#   scripts/bench.sh -label before -bench 'Figure5$'
#   ... apply a change ...
#   scripts/bench.sh -label after -bench 'Figure5$'
#   scripts/bench.sh -compare
set -eu
cd "$(dirname "$0")/.."
exec go run ./cmd/hydrobench "$@"
