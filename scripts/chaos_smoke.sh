#!/bin/sh
# Chaos smoke test of hydroserved's crash safety, as run in CI.
#
# Leg 1 (crash replay): boot the daemon with a journal, submit a job,
# SIGKILL the process while the job is running, restart it over the
# same journal + cache dir, and require that the job completes WITHOUT
# being resubmitted — and that its result is byte-identical to a clean
# daemon's run of the same job.
#
# Leg 2 (poison-job quarantine): boot with HYDRO_FAILPOINTS making the
# simulation panic, require two recovered failures then a 422
# quarantine rejection, and require that a healthy job still completes
# on the same daemon.
#
# Needs only curl, grep, sed, cmp. Exits nonzero on any failed
# expectation.
set -eu
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pid=""
trap 'if [ -n "$pid" ]; then kill -9 "$pid" 2>/dev/null || true; wait "$pid" 2>/dev/null || true; fi; rm -rf "$workdir"' EXIT

go build -o "$workdir/hydroserved" ./cmd/hydroserved

# start_daemon <args...>: boots the daemon, waits for its listen line,
# and sets $pid and $base. Extra environment goes via HYDRO_FAILPOINTS.
start_daemon() {
    : >"$workdir/out"
    "$workdir/hydroserved" -addr 127.0.0.1:0 -workers 1 "$@" \
        >"$workdir/out" 2>>"$workdir/log" &
    pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^hydroserved: listening on //p' "$workdir/out")
        [ -n "$addr" ] && break
        kill -0 "$pid" 2>/dev/null || { echo "daemon died:"; cat "$workdir/log"; exit 1; }
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "daemon never printed its listen address"; exit 1; }
    base="http://$addr"
}

# wait_for_state <id> <state> [tries]: polls until the job reaches the
# state; fails on any other terminal state.
wait_for_state() {
    _id=$1; _want=$2; _tries=${3:-600}
    for _ in $(seq 1 "$_tries"); do
        _status=$(curl -sf "$base/v1/jobs/$_id")
        _state=$(printf '%s' "$_status" | sed -n 's/.*"state":"\([a-z_]*\)".*/\1/p')
        [ "$_state" = "$_want" ] && return 0
        case "$_state" in
            done|failed|canceled|deadline_exceeded)
                echo "job reached $_state while waiting for $_want: $_status"; return 1 ;;
        esac
        sleep 0.2
    done
    echo "job never reached $_want (last state: $_state)"; return 1
}

echo "== leg 1: SIGKILL mid-job, restart, replay, byte-identical result"
cache1="$workdir/cache1"; wal1="$workdir/jobs.wal"
job='{"design":"Hydrogen","combo":"C1","cycles":30000000}'

start_daemon -cache-dir "$cache1" -journal "$wal1"
resp=$(curl -sf "$base/v1/jobs" -d "$job")
id=$(printf '%s' "$resp" | sed -n 's/.*"id":"\([0-9a-f]*\)".*/\1/p')
[ -n "$id" ] || { echo "no job id in response: $resp"; exit 1; }
wait_for_state "$id" running
echo "job $id running; kill -9 $pid"
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""

start_daemon -cache-dir "$cache1" -journal "$wal1"
grep -q "journal replay re-enqueued 1 interrupted job" "$workdir/log" \
    || { echo "no replay log line:"; cat "$workdir/log"; exit 1; }
# No resubmission: the replayed job is already registered under its
# content-addressed ID.
curl -sf "$base/v1/jobs/$id" | grep -q '"replayed":true' \
    || { echo "job $id not marked replayed after restart"; exit 1; }
wait_for_state "$id" done
echo "replayed job completed"
kill -TERM "$pid"
wait "$pid" || { echo "daemon exited nonzero on SIGTERM"; exit 1; }
pid=""
[ -f "$cache1/$id.json" ] || { echo "no spilled result after drain"; exit 1; }

cache2="$workdir/cache2"
start_daemon -cache-dir "$cache2"
resp=$(curl -sf "$base/v1/jobs" -d "$job")
id2=$(printf '%s' "$resp" | sed -n 's/.*"id":"\([0-9a-f]*\)".*/\1/p')
[ "$id2" = "$id" ] || { echo "clean daemon minted a different job id: $id2 vs $id"; exit 1; }
wait_for_state "$id" done
kill -TERM "$pid"
wait "$pid" || { echo "clean daemon exited nonzero on SIGTERM"; exit 1; }
pid=""
cmp "$cache1/$id.json" "$cache2/$id.json" \
    || { echo "replayed result differs from clean run"; exit 1; }
echo "crashed-and-replayed result is byte-identical to the clean run"

echo "== leg 2: fault-injected panics quarantine the poison job"
wal2="$workdir/poison.wal"
HYDRO_FAILPOINTS="panic-on-epoch=2" \
    start_daemon -journal "$wal2" -quarantine 2
poison='{"design":"Hydrogen","combo":"C2","cycles":2000000}'
resp=$(curl -sf "$base/v1/jobs" -d "$poison")
pid1=$(printf '%s' "$resp" | sed -n 's/.*"id":"\([0-9a-f]*\)".*/\1/p')
wait_for_state "$pid1" failed
curl -sf "$base/v1/jobs/$pid1" | grep -q 'worker panic' \
    || { echo "failed job does not carry the panic"; exit 1; }
curl -sf "$base/v1/jobs" -d "$poison" >/dev/null  # second attempt
wait_for_state "$pid1" failed
# Third submission must be refused with 422.
code=$(curl -s -o "$workdir/quarantine" -w '%{http_code}' "$base/v1/jobs" -d "$poison")
[ "$code" = 422 ] || { echo "poison resubmit: HTTP $code, want 422: $(cat "$workdir/quarantine")"; exit 1; }
grep -q quarantined "$workdir/quarantine" || { echo "422 without quarantine message"; exit 1; }
echo "poison job quarantined after 2 panics"

# The daemon is still healthy: a clean job (failpoint exhausted)
# completes and the panics were counted.
healthy='{"design":"Hydrogen","combo":"C2","cycles":2000000,"seed":7}'
resp=$(curl -sf "$base/v1/jobs" -d "$healthy")
hid=$(printf '%s' "$resp" | sed -n 's/.*"id":"\([0-9a-f]*\)".*/\1/p')
wait_for_state "$hid" done
metrics=$(curl -sf "$base/metrics")
printf '%s' "$metrics" | grep -q '^hydroserved_worker_panics_total 2$' \
    || { echo "bad panic metrics:"; printf '%s\n' "$metrics" | grep panic; exit 1; }
printf '%s' "$metrics" | grep -q '^hydroserved_jobs_quarantined_total 1$' \
    || { echo "bad quarantine metrics:"; printf '%s\n' "$metrics" | grep quarantine; exit 1; }
kill -TERM "$pid"
wait "$pid" || { echo "daemon exited nonzero on SIGTERM"; exit 1; }
pid=""
echo "healthy job completed alongside the quarantine"

echo "chaos smoke OK"
