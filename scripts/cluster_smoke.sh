#!/bin/sh
# Cluster smoke test of hydroserved's peer tier, as run in CI.
#
# Boots a 3-member cluster (binaries built with -race), then:
#
# Leg 1 (dedup): submits the same job through all three members and
# requires exactly ONE simulation cluster-wide, the same strong ETag
# from every member, and byte-identical result bytes everywhere.
#
# Leg 2 (failover): submits a long job so that it is proxied to its
# rendezvous owner, kill -9s the owner mid-job, and requires the
# forwarding front to promote the job into its own journal-backed queue
# and finish it — with the surviving members agreeing on the result
# bytes, /readyz reporting degraded (but 200), and
# hydro_cluster_promoted_jobs_total confirming the promote path ran.
#
# Every /metrics scrape is piped through promcheck, so the
# hydro_cluster_* series must be well-formed Prometheus text.
#
# Needs only curl, grep, sed. Exits nonzero on any failed expectation.
set -eu
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pids=""
trap 'for p in $pids; do kill -9 "$p" 2>/dev/null || true; done; wait 2>/dev/null || true; rm -rf "$workdir"' EXIT

echo "== build (-race)"
go build -race -o "$workdir/hydroserved" ./cmd/hydroserved
go build -o "$workdir/promcheck" ./cmd/promcheck

# Three ports derived from the PID keep parallel CI jobs apart; the
# boot check below catches a clash.
p0=$((18000 + $$ % 10000)); p1=$((p0 + 1)); p2=$((p0 + 2))
peers="n0=http://127.0.0.1:$p0,n1=http://127.0.0.1:$p1,n2=http://127.0.0.1:$p2"

# start_member <idx> <port>: boots member n<idx> with its own journal
# and appends its PID to $pids.
start_member() {
    _i=$1; _port=$2
    "$workdir/hydroserved" -addr "127.0.0.1:$_port" -workers 2 \
        -journal "$workdir/n$_i.wal" -self "n$_i" -peers "$peers" \
        -peer-probe 250ms -steal-interval 250ms \
        >"$workdir/n$_i.out" 2>"$workdir/n$_i.log" &
    pids="$pids $!"
    eval "pid$_i=$!"
}

start_member 0 "$p0"
start_member 1 "$p1"
start_member 2 "$p2"

base0="http://127.0.0.1:$p0"; base1="http://127.0.0.1:$p1"; base2="http://127.0.0.1:$p2"

for b in "$base0" "$base1" "$base2"; do
    up=""
    for _ in $(seq 1 100); do
        curl -sf "$b/healthz" >/dev/null 2>&1 && { up=1; break; }
        sleep 0.1
    done
    [ -n "$up" ] || { echo "member at $b never came up"; cat "$workdir"/n*.log; exit 1; }
done
echo "3 members up: $peers"

base_for() {
    case "$1" in
        n0) echo "$base0" ;;
        n1) echo "$base1" ;;
        n2) echo "$base2" ;;
        *) echo "unknown member id: $1" >&2; return 1 ;;
    esac
}

# enqueued_total <base>: this member's own simulation count.
enqueued_total() {
    curl -sf "$1/metrics" | sed -n 's/^hydroserved_jobs_enqueued_total \([0-9]*\)$/\1/p'
}

# wait_done <base> <id> [tries]: polls until the job is done.
wait_done() {
    _base=$1; _id=$2
    for _ in $(seq 1 "${3:-600}"); do
        _state=$(curl -sf "$_base/v1/jobs/$_id" | sed -n 's/.*"state":"\([a-z_]*\)".*/\1/p')
        [ "$_state" = done ] && return 0
        case "$_state" in
            failed|canceled|deadline_exceeded) echo "job $_id reached $_state"; return 1 ;;
        esac
        sleep 0.2
    done
    echo "job $_id never finished (last state: ${_state:-none})"; return 1
}

echo "== leg 1: one submission through each member, ONE simulation total"
job='{"design":"Hydrogen","combo":"C1","cycles":2000000}'
id=""
for b in "$base0" "$base1" "$base2"; do
    resp=$(curl -sf "$b/v1/jobs" -d "$job")
    _id=$(printf '%s' "$resp" | sed -n 's/.*"id":"\([0-9a-f]*\)".*/\1/p')
    [ -n "$_id" ] || { echo "no job id from $b: $resp"; exit 1; }
    [ -z "$id" ] || [ "$id" = "$_id" ] || { echo "members minted different ids: $id vs $_id"; exit 1; }
    id=$_id
done
wait_done "$base0" "$id"

total=0
for b in "$base0" "$base1" "$base2"; do
    n=$(enqueued_total "$b"); total=$((total + ${n:-0}))
done
[ "$total" = 1 ] || { echo "cluster ran $total simulations, want 1"; exit 1; }
echo "single simulation confirmed ($total enqueue cluster-wide)"

# Same strong validator and identical result bytes from every member.
etag=""; result=""
for b in "$base0" "$base1" "$base2"; do
    curl -sf -D "$workdir/hdr" "$b/v1/jobs/$id" -o "$workdir/body"
    _etag=$(sed -n 's/^[Ee][Tt]ag: *//p' "$workdir/hdr" | tr -d '\r')
    _result=$(sed -n 's/.*"result"://p' "$workdir/body")
    [ "$_etag" = "\"$id\"" ] || { echo "$b served ETag $_etag, want \"$id\""; exit 1; }
    [ -n "$_result" ] || { echo "$b served no result bytes"; exit 1; }
    [ -z "$result" ] || [ "$result" = "$_result" ] || { echo "result bytes differ between members"; exit 1; }
    etag=$_etag; result=$_result
done
echo "all members serve ETag $etag with identical result bytes"

echo "== leg 2: kill -9 the owner mid-job; the front promotes and finishes"
# Big enough that the job is reliably still running when the kill
# lands, small enough that the promoted re-run (under -race) finishes
# inside the poll window.
long='{"design":"Hydrogen","combo":"C2","cycles":10000000}'
curl -sf -D "$workdir/hdr" "$base0/v1/jobs" -d "$long" -o "$workdir/body"
lid=$(sed -n 's/.*"id":"\([0-9a-f]*\)".*/\1/p' "$workdir/body")
[ -n "$lid" ] || { echo "no job id: $(cat "$workdir/body")"; exit 1; }
owner=$(sed -n 's/^[Xx]-[Hh]ydro-[Pp]eer: *//p' "$workdir/hdr" | tr -d '\r')
front=n0
if [ -z "$owner" ]; then
    # n0 owns the job itself; resubmit through n1 so a FRONT with a
    # forwarded-job ledger entry exists, then kill n0.
    owner=n0; front=n1
    curl -sf "$base1/v1/jobs" -d "$long" >/dev/null
else
    echo "submission was proxied: n0 -> $owner"
fi
fbase=$(base_for "$front")

# Wait until the owner actually runs it, so the kill lands mid-job.
obase=$(base_for "$owner")
for _ in $(seq 1 100); do
    state=$(curl -sf "$obase/v1/jobs/$lid" | sed -n 's/.*"state":"\([a-z_]*\)".*/\1/p')
    [ "$state" = running ] && break
    sleep 0.1
done
[ "$state" = running ] || { echo "job $lid never started on owner $owner (state: $state)"; exit 1; }

case "$owner" in n0) opid=$pid0 ;; n1) opid=$pid1 ;; n2) opid=$pid2 ;; esac
echo "owner $owner (pid $opid) running job $lid; kill -9"
kill -9 "$opid"
wait "$opid" 2>/dev/null || true

wait_done "$fbase" "$lid" 1200
promoted=$(curl -sf "$fbase/metrics" | sed -n 's/^hydro_cluster_promoted_jobs_total \([0-9]*\)$/\1/p')
[ "$promoted" = 1 ] || { echo "front $front promoted $promoted jobs, want 1"; exit 1; }
echo "front $front promoted the orphaned job and finished it"

# Both survivors agree on the failover result bytes and validator.
fresult=""
for m in n0 n1 n2; do
    [ "$m" = "$owner" ] && continue
    mb=$(base_for "$m")
    curl -sf -D "$workdir/hdr" "$mb/v1/jobs/$lid" -o "$workdir/body"
    _etag=$(sed -n 's/^[Ee][Tt]ag: *//p' "$workdir/hdr" | tr -d '\r')
    _result=$(sed -n 's/.*"result"://p' "$workdir/body")
    [ "$_etag" = "\"$lid\"" ] || { echo "$m served ETag $_etag after failover, want \"$lid\""; exit 1; }
    [ -n "$_result" ] || { echo "$m served no failover result"; exit 1; }
    [ -z "$fresult" ] || [ "$fresult" = "$_result" ] || { echo "survivors disagree on result bytes"; exit 1; }
    fresult=$_result
done
echo "survivors serve byte-identical failover results"

# Degraded-but-200 readiness with the dead member named.
code=$(curl -s -o "$workdir/readyz" -w '%{http_code}' "$fbase/readyz")
[ "$code" = 200 ] || { echo "/readyz HTTP $code, want 200: $(cat "$workdir/readyz")"; exit 1; }
grep -q '"degraded":true' "$workdir/readyz" || { echo "/readyz not degraded: $(cat "$workdir/readyz")"; exit 1; }
grep -q "\"$owner\":{\"alive\":false" "$workdir/readyz" \
    || { echo "/readyz does not name dead member $owner: $(cat "$workdir/readyz")"; exit 1; }
echo "/readyz is 200 + degraded, naming $owner as down"

echo "== metrics: hydro_cluster_* present and exposition well-formed"
metrics=$(curl -sf "$fbase/metrics")
printf '%s\n' "$metrics" | "$workdir/promcheck" || { echo "metrics exposition malformed"; exit 1; }
for series in hydro_cluster_peers hydro_cluster_peers_alive \
    hydro_cluster_proxied_submits_total hydro_cluster_proxied_gets_total \
    hydro_cluster_peer_fills_total hydro_cluster_failovers_total \
    hydro_cluster_promoted_jobs_total hydro_cluster_steals_total \
    hydro_cluster_stolen_total hydro_cluster_steal_returns_total \
    hydro_cluster_probe_errors_total; do
    printf '%s\n' "$metrics" | grep -q "^$series " \
        || { echo "series $series missing from $front's exposition"; exit 1; }
done
echo "all hydro_cluster_* series present"

# Race detector: a data race aborts the daemon (exit 66) and would have
# surfaced above as a dead member; make the absence explicit.
if grep -l "WARNING: DATA RACE" "$workdir"/n*.log 2>/dev/null; then
    echo "race detector fired:"; grep -A5 "DATA RACE" "$workdir"/n*.log; exit 1
fi

echo "cluster smoke OK"
