#!/bin/sh
# epoch_plot.sh — render a telemetry CSV (hydrosim -telemetry, hydroexp
# -telemetry, or GET /v1/jobs/{id}/telemetry?format=csv) as the
# knob-trajectory table behind the paper's Figs. 8-11: one row per epoch
# where the (cap, bw, tok) operating point moved, plus the first and
# last epochs, followed by a convergence summary line.
#
# Usage: epoch_plot.sh [file.csv]        (stdin when no file is given)
#
# Columns are located by header name, not position, so the script stays
# correct if obs.EpochPoint grows fields. Needs only awk.
set -eu

awk -F, '
NR == 1 {
    for (i = 1; i <= NF; i++) col[$i] = i
    split("epoch end_cycle weighted_ipc cap_ways bw_groups tok_idx", need, " ")
    for (i in need) if (!(need[i] in col)) {
        printf "epoch_plot: column %s missing from header\n", need[i] > "/dev/stderr"
        exit 1
    }
    printf "%-7s %-12s %-6s %-4s %-4s %-8s %s\n", \
        "epoch", "end_cycle", "cap", "bw", "tok", "wIPC", "change"
    next
}
{
    epoch = $col["epoch"]; cycle = $col["end_cycle"]; wipc = $col["weighted_ipc"]
    cap = $col["cap_ways"]; bw = $col["bw_groups"]; tok = $col["tok_idx"]
    rows++
    change = ""
    if (rows == 1) {
        change = "start"
    } else {
        if (cap != pcap) { change = change "cap " pcap "->" cap " "; moves++ }
        if (bw != pbw) { change = change "bw " pbw "->" bw " "; moves++ }
        if (tok != ptok) { change = change "tok " ptok "->" tok " "; moves++ }
    }
    if (change != "") {
        printf "%-7s %-12s %-6s %-4s %-4s %-8.3f %s\n", \
            epoch, cycle, cap, bw, tok, wipc, change
        lastshown = epoch
    }
    pcap = cap; pbw = bw; ptok = tok
    lastrow = sprintf("%-7s %-12s %-6s %-4s %-4s %-8.3f %s", \
        epoch, cycle, cap, bw, tok, wipc, "final")
    lastepoch = epoch
}
END {
    if (rows == 0) {
        print "epoch_plot: no telemetry rows" > "/dev/stderr"
        exit 1
    }
    if (lastshown != lastepoch) print lastrow
    printf "%d epochs, %d knob moves, converged at (cap=%s, bw=%s, tok=%s)\n", \
        rows, moves, pcap, pbw, ptok
}
' "${1:--}"
