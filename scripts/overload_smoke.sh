#!/bin/sh
# Overload smoke test of hydroserved's admission control and breaker
# routing, as run in CI. Binaries are built with -race.
#
# Leg 1 (admission, standalone): one worker, a warmed cost model, and a
# CoDel target. A batch flood must be shed with 429 + an integer
# Retry-After while an interactive submission through the same daemon is
# still admitted and finishes — batch back-pressure never closes the
# interactive lane.
#
# Leg 2 (breakers, 3-member cluster): SIGSTOP one member. Submissions
# through a live front must keep succeeding (failover), the front's
# per-peer circuit breaker must trip open (and short-circuit later
# calls), and after SIGCONT the half-open probe must close it again.
#
# Every /metrics scrape is piped through promcheck, so the new
# hydroserved_admission_* / hydro_cluster_breaker_* series must be
# well-formed Prometheus text.
#
# Needs only curl, grep, sed. Exits nonzero on any failed expectation.
set -eu
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pids=""
trap 'for p in $pids; do kill -9 "$p" 2>/dev/null || true; done; wait 2>/dev/null || true; rm -rf "$workdir"' EXIT

echo "== build (-race)"
go build -race -o "$workdir/hydroserved" ./cmd/hydroserved
go build -o "$workdir/promcheck" ./cmd/promcheck

p0=$((19000 + $$ % 10000)); p1=$((p0 + 1)); p2=$((p0 + 2)); p3=$((p0 + 3))

# metric <base> <series>: one un-labeled series value (empty if absent).
metric() {
    curl -sf "$1/metrics" | sed -n "s/^$2 \\([0-9][0-9]*\\)\$/\\1/p"
}

wait_up() {
    for _ in $(seq 1 100); do
        curl -sf "$1/healthz" >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    echo "daemon at $1 never came up"; cat "$workdir"/*.log; return 1
}

wait_done() {
    _base=$1; _id=$2
    for _ in $(seq 1 "${3:-600}"); do
        _state=$(curl -sf "$_base/v1/jobs/$_id" | sed -n 's/.*"state":"\([a-z_]*\)".*/\1/p')
        [ "$_state" = done ] && return 0
        case "$_state" in
            failed|canceled|deadline_exceeded) echo "job $_id reached $_state"; return 1 ;;
        esac
        sleep 0.2
    done
    echo "job $_id never finished (last state: ${_state:-none})"; return 1
}

echo "== leg 1: batch flood is shed, interactive stays admitted"
"$workdir/hydroserved" -addr "127.0.0.1:$p0" -workers 1 \
    -journal "$workdir/solo.wal" -codel-target 50ms \
    >"$workdir/solo.out" 2>"$workdir/solo.log" &
pids="$pids $!"; solo_pid=$!
base="http://127.0.0.1:$p0"
wait_up "$base"

# Warm the cost model: admission never sheds on a cold one.
resp=$(curl -sf "$base/v1/jobs" -d '{"design":"Hydrogen","combo":"C1","cycles":2000000}')
pid_id=$(printf '%s' "$resp" | sed -n 's/.*"id":"\([0-9a-f]*\)".*/\1/p')
[ -n "$pid_id" ] || { echo "no id from prime submit: $resp"; exit 1; }
wait_done "$base" "$pid_id"
echo "cost model warmed"

# Flood: distinct batch jobs of the same family. The first occupies the
# worker, the second queues, and the warmed projection puts every later
# one past the 50ms target -> 429.
shed=0
for s in 1 2 3 4 5 6; do
    code=$(curl -s -o "$workdir/body" -D "$workdir/hdr" -w '%{http_code}' "$base/v1/jobs" \
        -d "{\"design\":\"Hydrogen\",\"combo\":\"C1\",\"cycles\":3000000,\"seed\":$s,\"priority\":\"batch\"}")
    if [ "$code" = 429 ]; then
        ra=$(sed -n 's/^[Rr]etry-[Aa]fter: *//p' "$workdir/hdr" | tr -d '\r')
        case "$ra" in
            ''|*[!0-9]*) echo "429 without integer Retry-After (got '$ra')"; exit 1 ;;
        esac
        [ "$ra" -ge 1 ] || { echo "Retry-After $ra < 1"; exit 1; }
        shed=$((shed + 1))
    elif [ "$code" != 202 ] && [ "$code" != 200 ]; then
        echo "batch submit seed=$s: HTTP $code: $(cat "$workdir/body")"; exit 1
    fi
done
[ "$shed" -ge 1 ] || { echo "batch flood produced no 429s"; exit 1; }
echo "$shed of 6 batch submissions shed with honest Retry-After"

# Interactive is never CoDel-shed: same daemon, same instant, admitted.
code=$(curl -s -o "$workdir/body" -w '%{http_code}' "$base/v1/jobs" \
    -d '{"design":"Hydrogen","combo":"C1","cycles":300000,"seed":77}')
[ "$code" = 202 ] || [ "$code" = 200 ] || { echo "interactive submit under flood: HTTP $code"; exit 1; }
iid=$(sed -n 's/.*"id":"\([0-9a-f]*\)".*/\1/p' "$workdir/body")
wait_done "$base" "$iid" 1200
echo "interactive job admitted under batch flood and finished"

mshed=$(metric "$base" hydroserved_admission_shed_total)
[ "${mshed:-0}" -ge 1 ] || { echo "hydroserved_admission_shed_total=$mshed, want >=1"; exit 1; }
curl -sf "$base/metrics" | "$workdir/promcheck" || { echo "solo metrics exposition malformed"; exit 1; }
for series in hydroserved_admission_shed_total hydroserved_admission_shed_overload_total \
    hydroserved_admission_shed_deadline_total hydroserved_disk_free_bytes; do
    curl -sf "$base/metrics" | grep -q "^$series " || { echo "series $series missing"; exit 1; }
done
curl -sf "$base/metrics" | grep -q '^hydroserved_batch_latency_seconds_count ' \
    || { echo "batch latency histogram missing"; exit 1; }
kill "$solo_pid" 2>/dev/null || true
echo "admission metrics present and well-formed"

echo "== leg 2: SIGSTOP'd peer trips its breaker; submits keep succeeding"
peers="n1=http://127.0.0.1:$p1,n2=http://127.0.0.1:$p2,n3=http://127.0.0.1:$p3"
i=1
for port in "$p1" "$p2" "$p3"; do
    "$workdir/hydroserved" -addr "127.0.0.1:$port" -workers 2 \
        -journal "$workdir/n$i.wal" -self "n$i" -peers "$peers" \
        -peer-probe 250ms -steal-interval -1s \
        >"$workdir/n$i.out" 2>"$workdir/n$i.log" &
    pids="$pids $!"
    eval "cpid$i=$!"
    i=$((i + 1))
done
base1="http://127.0.0.1:$p1"
for port in "$p1" "$p2" "$p3"; do wait_up "http://127.0.0.1:$port"; done
echo "3 members up"

kill -STOP "$cpid3"
echo "n3 (pid $cpid3) SIGSTOPped"

# Wait for n1's prober to notice, so proxy attempts at the frozen peer
# carry the short probe fuse instead of the full proxy timeout.
for _ in $(seq 1 100); do
    curl -s "$base1/readyz" | grep -q '"n3":{"alive":false' && break
    sleep 0.1
done
curl -s "$base1/readyz" | grep -q '"n3":{"alive":false' \
    || { echo "n1 never marked n3 dead"; exit 1; }

# Submit distinct quick jobs through n1 until the n3 breaker has both
# tripped open and short-circuited a later call. Roughly a third of the
# keys rendezvous onto n3; every submission must succeed regardless.
opens=0; shorts=0
for s in $(seq 101 160); do
    code=$(curl -s -o "$workdir/body" -w '%{http_code}' "$base1/v1/jobs" \
        -d "{\"design\":\"Hydrogen\",\"combo\":\"C1\",\"cycles\":200000,\"seed\":$s}")
    [ "$code" = 202 ] || [ "$code" = 200 ] || { echo "submit seed=$s with frozen peer: HTTP $code: $(cat "$workdir/body")"; exit 1; }
    opens=$(metric "$base1" hydro_cluster_breaker_opens_total)
    shorts=$(metric "$base1" hydro_cluster_breaker_short_circuits_total)
    [ "${opens:-0}" -ge 1 ] && [ "${shorts:-0}" -ge 1 ] && break
done
[ "${opens:-0}" -ge 1 ] || { echo "breaker never opened (opens=$opens)"; exit 1; }
[ "${shorts:-0}" -ge 1 ] || { echo "open breaker never short-circuited (shorts=$shorts)"; exit 1; }
gauge=$(metric "$base1" hydro_cluster_breakers_open)
[ "${gauge:-0}" -ge 1 ] || { echo "hydro_cluster_breakers_open=$gauge, want >=1"; exit 1; }
echo "breaker open (opens=$opens, short-circuits=$shorts) and submits kept succeeding"

curl -sf "$base1/metrics" | "$workdir/promcheck" || { echo "cluster metrics exposition malformed"; exit 1; }

kill -CONT "$cpid3"
echo "n3 resumed; waiting for the half-open probe to close the breaker"
# Breaker state only advances on routed calls: keep submitting until a
# probe lands on n3 and closes it (OpenFor is 5s).
closed=""
for s in $(seq 201 260); do
    curl -s -o /dev/null "$base1/v1/jobs" \
        -d "{\"design\":\"Hydrogen\",\"combo\":\"C1\",\"cycles\":200000,\"seed\":$s}" || true
    gauge=$(metric "$base1" hydro_cluster_breakers_open)
    [ "${gauge:-1}" = 0 ] && { closed=1; break; }
    sleep 0.5
done
[ -n "$closed" ] || { echo "breaker never closed after SIGCONT"; exit 1; }
echo "breaker closed after recovery probe"

if grep -l "WARNING: DATA RACE" "$workdir"/*.log 2>/dev/null; then
    echo "race detector fired:"; grep -A5 "DATA RACE" "$workdir"/*.log; exit 1
fi

echo "overload smoke OK"
