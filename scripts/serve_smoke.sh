#!/bin/sh
# End-to-end smoke test of the hydroserved daemon, as run in CI: boot it
# on a random port, submit a QuickConfig C1 job over HTTP, poll it to
# completion, resubmit and require a cache hit, check /metrics (and its
# exposition well-formedness via promcheck), and pull the job's epoch
# telemetry through scripts/epoch_plot.sh. Needs only curl, grep, and
# awk. Exits nonzero on any failed expectation.
set -eu
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pid=""
trap 'if [ -n "$pid" ]; then kill "$pid" 2>/dev/null || true; wait "$pid" 2>/dev/null || true; fi; rm -rf "$workdir"' EXIT

go build -o "$workdir/hydroserved" ./cmd/hydroserved
go build -o "$workdir/promcheck" ./cmd/promcheck
"$workdir/hydroserved" -addr 127.0.0.1:0 -cache-dir "$workdir/cache" >"$workdir/out" 2>"$workdir/log" &
pid=$!

# The daemon prints "hydroserved: listening on 127.0.0.1:PORT" once the
# socket is bound; that line is the script's contract with the binary.
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^hydroserved: listening on //p' "$workdir/out")
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "daemon died:"; cat "$workdir/log"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "daemon never printed its listen address"; exit 1; }
base="http://$addr"
echo "daemon up at $base"

job=$(curl -sf "$base/v1/jobs" -d '{"design":"Hydrogen","combo":"C1"}')
echo "submitted: $job"
id=$(printf '%s' "$job" | sed -n 's/.*"id":"\([0-9a-f]*\)".*/\1/p')
[ -n "$id" ] || { echo "no job id in response"; exit 1; }

state=""
for _ in $(seq 1 600); do
    status=$(curl -sf "$base/v1/jobs/$id")
    state=$(printf '%s' "$status" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')
    case "$state" in
        done) break ;;
        failed|canceled) echo "job $state: $status"; exit 1 ;;
    esac
    sleep 0.5
done
[ "$state" = done ] || { echo "job never finished (state=$state)"; exit 1; }
printf '%s' "$status" | grep -q '"CPUIPC"' || { echo "done job has no result"; exit 1; }
echo "job done"

resubmit=$(curl -sf "$base/v1/jobs" -d '{"design":"Hydrogen","combo":"C1"}')
printf '%s' "$resubmit" | grep -q '"cached":true' || { echo "resubmission was not a cache hit: $resubmit"; exit 1; }
echo "resubmission served from cache"

# Conditional GET: a done job's content-addressed ID is its strong
# ETag, and a matching If-None-Match revalidates body-free as 304.
etag=$(curl -sfi "$base/v1/jobs/$id" -o /dev/null -D - | sed -n 's/^[Ee][Tt][Aa][Gg]: //p' | tr -d '\r')
[ "$etag" = "\"$id\"" ] || { echo "missing or wrong ETag: $etag"; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' -H "If-None-Match: $etag" "$base/v1/jobs/$id")
[ "$code" = "304" ] || { echo "conditional GET returned $code, want 304"; exit 1; }
echo "ETag revalidation OK"

metrics=$(curl -sf "$base/metrics")
printf '%s' "$metrics" | grep -q '^hydroserved_jobs_completed_total 1$' || { echo "bad metrics:"; printf '%s\n' "$metrics"; exit 1; }
printf '%s' "$metrics" | grep -q '^hydroserved_cache_hits_total 1$' || { echo "bad metrics:"; printf '%s\n' "$metrics"; exit 1; }
printf '%s\n' "$metrics" | "$workdir/promcheck" || { echo "metrics exposition is malformed"; exit 1; }
printf '%s' "$metrics" | grep -q '^# TYPE hydroserved_job_seconds histogram$' || { echo "job_seconds histogram missing"; exit 1; }
echo "metrics exposition valid"
curl -sf "$base/healthz" | grep -q '"ok":true' || { echo "healthz failed"; exit 1; }

# Epoch telemetry: the CSV endpoint must yield rows, and the plot script
# must digest them into a knob-trajectory table with a convergence line.
curl -sf "$base/v1/jobs/$id/telemetry?format=csv" >"$workdir/telem.csv"
[ "$(wc -l <"$workdir/telem.csv")" -gt 1 ] || { echo "telemetry CSV is empty"; exit 1; }
./scripts/epoch_plot.sh "$workdir/telem.csv" | grep -q 'converged at (cap=' || { echo "epoch_plot failed on served telemetry"; exit 1; }
echo "telemetry + epoch_plot OK"

# Graceful shutdown: SIGTERM must drain and exit 0, leaving the result
# spilled in the cache directory.
kill -TERM "$pid"
wait "$pid" || { echo "daemon exited nonzero on SIGTERM"; exit 1; }
pid="" # already reaped; disarm the trap's kill
[ -f "$workdir/cache/$id.json" ] || { echo "no spilled result after drain"; exit 1; }

# Hit-path regression gates: a quick serve bench must keep the cache-hit
# p50 within 2x of the last recorded BENCH_serve.json operating point,
# and the tracing-on hit p50 within 3% of tracing-off (the hydrobench
# gate enforces both).
go run ./cmd/hydrobench -serve -quick -out "" -gate 2 || { echo "serve bench regression gate failed"; exit 1; }
echo "serve bench gate OK"
echo "serve smoke OK"
