#!/bin/sh
# Observability-plane smoke test of hydroserved's cluster tracing, as
# run in CI.
#
# Boots a 2-member cluster (binaries built with -race), mints a client
# trace context, and submits one job through BOTH members under that
# context — so whichever member owns the job, the other proxies and
# stamps a proxy span into the same trace. Then requires:
#
#   - GET /v1/traces/{id} from EITHER member returns the merged tree:
#     spans from both node names, "partial": false;
#   - GET /v1/clusterz from one member federates both members' health
#     and metrics ("partial": false, both IDs present), and its
#     ?format=prometheus rendering passes promcheck with node labels;
#   - /metrics passes promcheck with at least one exemplar-annotated
#     histogram bucket (the traced job's trace ID);
#   - the 1ms -slow-request threshold fired, leaving a forensic log
#     record with the span tree inline;
#   - /debug/tracez lists the trace on the owning node.
#
# Needs only curl, grep, sed, od. Exits nonzero on any failed
# expectation.
set -eu
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pids=""
trap 'for p in $pids; do kill -9 "$p" 2>/dev/null || true; done; wait 2>/dev/null || true; rm -rf "$workdir"' EXIT

echo "== build (-race)"
go build -race -o "$workdir/hydroserved" ./cmd/hydroserved
go build -o "$workdir/promcheck" ./cmd/promcheck

# Two ports derived from the PID keep parallel CI jobs apart.
p0=$((20000 + $$ % 10000)); p1=$((p0 + 1))
peers="n0=http://127.0.0.1:$p0,n1=http://127.0.0.1:$p1"

start_member() {
    _i=$1; _port=$2
    "$workdir/hydroserved" -addr "127.0.0.1:$_port" -workers 2 \
        -journal "$workdir/n$_i.wal" -self "n$_i" -peers "$peers" \
        -peer-probe 250ms -slow-request 1ms -access-log \
        >"$workdir/n$_i.out" 2>"$workdir/n$_i.log" &
    pids="$pids $!"
}

start_member 0 "$p0"
start_member 1 "$p1"
base0="http://127.0.0.1:$p0"; base1="http://127.0.0.1:$p1"

for b in "$base0" "$base1"; do
    up=""
    for _ in $(seq 1 100); do
        curl -sf "$b/healthz" >/dev/null 2>&1 && { up=1; break; }
        sleep 0.1
    done
    [ -n "$up" ] || { echo "member at $b never came up"; cat "$workdir"/n*.log; exit 1; }
done
echo "2 members up: $peers"

echo "== traced submit through both members (one proxies to the owner)"
# Client-minted trace context: 32-hex trace ID, 16-hex span ID, sampled.
tid=$(od -An -N16 -tx1 /dev/urandom | tr -d ' \n')
sid=$(od -An -N8 -tx1 /dev/urandom | tr -d ' \n')
trace="$tid-$sid-01"
job='{"design":"Hydrogen","combo":"C1","cycles":2000000}'

id=""
for b in "$base0" "$base1"; do
    resp=$(curl -sf "$b/v1/jobs" -H "X-Hydro-Trace: $trace" -d "$job")
    _id=$(printf '%s' "$resp" | sed -n 's/.*"id":"\([0-9a-f]*\)".*/\1/p')
    [ -n "$_id" ] || { echo "no job id from $b: $resp"; exit 1; }
    [ -z "$id" ] || [ "$id" = "$_id" ] || { echo "members minted different ids: $id vs $_id"; exit 1; }
    id=$_id
done

state=""
for _ in $(seq 1 600); do
    state=$(curl -sf "$base0/v1/jobs/$id" | sed -n 's/.*"state":"\([a-z_]*\)".*/\1/p')
    [ "$state" = done ] && break
    case "$state" in
        failed|canceled|deadline_exceeded) echo "job $id reached $state"; exit 1 ;;
    esac
    sleep 0.2
done
[ "$state" = done ] || { echo "job $id never finished (last state: ${state:-none})"; exit 1; }
echo "traced job $id done under trace $tid"

echo "== merged trace tree from both members"
# The owner deposits its spans moments after the status flips done;
# poll until the fan-out covers both nodes.
for b in "$base0" "$base1"; do
    merged=""
    for _ in $(seq 1 50); do
        payload=$(curl -sf "$b/v1/traces/$tid" || true)
        # "partial" is omitted when false; its presence means degraded.
        if printf '%s' "$payload" | grep -q '"n0"' \
            && printf '%s' "$payload" | grep -q '"n1"' \
            && ! printf '%s' "$payload" | grep -q '"partial":true'; then
            merged=1; break
        fi
        sleep 0.2
    done
    [ -n "$merged" ] || { echo "$b never served the merged trace: $payload"; exit 1; }
    printf '%s' "$payload" | grep -q '"name":"proxy"' || { echo "merged trace has no proxy span: $payload"; exit 1; }
done
echo "both members serve the merged tree (n0 + n1 spans, proxy hop visible)"

echo "== clusterz federation"
cz=$(curl -sf "$base0/v1/clusterz")
printf '%s' "$cz" | grep -q '"self":"n0"' || { echo "clusterz self wrong: $cz"; exit 1; }
printf '%s' "$cz" | grep -q '"partial":false' || { echo "clusterz partial with both members up: $cz"; exit 1; }
for m in n0 n1; do
    printf '%s' "$cz" | grep -q "\"id\":\"$m\"" || { echo "clusterz missing member $m: $cz"; exit 1; }
done
curl -sf "$base0/v1/clusterz?format=prometheus" >"$workdir/clusterprom"
"$workdir/promcheck" <"$workdir/clusterprom" || { echo "clusterz prometheus rendering malformed"; exit 1; }
grep -q 'node="n1"' "$workdir/clusterprom" || { echo "clusterz prometheus rendering lacks node labels"; exit 1; }
echo "clusterz merges both members; prometheus rendering well-formed"

echo "== metrics: exemplars present, exposition well-formed"
exemplar=""
for b in "$base0" "$base1"; do
    curl -sf "$b/metrics" >"$workdir/metrics"
    "$workdir/promcheck" <"$workdir/metrics" || { echo "$b metrics exposition malformed"; exit 1; }
    grep -q "trace_id=\"$tid\"" "$workdir/metrics" && exemplar=1
done
[ -n "$exemplar" ] || { echo "no histogram bucket carries the trace's exemplar"; exit 1; }
echo "exemplar-annotated exposition valid on both members"

echo "== slow-request forensics and tracez"
grep -q 'slow request' "$workdir"/n0.log "$workdir"/n1.log \
    || { echo "no slow-request forensic record despite 1ms threshold"; exit 1; }
tracez=""
for b in "$base0" "$base1"; do
    curl -sf "$b/debug/tracez" | grep -q "$tid" && tracez=1
done
[ -n "$tracez" ] || { echo "trace $tid missing from every /debug/tracez"; exit 1; }
echo "slow-request record and tracez listing present"

if grep -l "WARNING: DATA RACE" "$workdir"/n*.log 2>/dev/null; then
    echo "race detector fired:"; grep -A5 "DATA RACE" "$workdir"/n*.log; exit 1
fi

echo "trace smoke OK"
